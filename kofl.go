// Package kofl is a self-stabilizing k-out-of-ℓ exclusion library for
// oriented tree networks — an implementation of Datta, Devismes, Horn and
// Larmore, "Self-Stabilizing k-out-of-ℓ Exclusion on Tree Networks"
// (IPPS 2009, arXiv:0812.1093).
//
// There are ℓ units of a shared resource; any process of the tree may
// request up to k ≤ ℓ units at a time. The protocol circulates ℓ resource
// tokens in DFS order over the tree's virtual ring, a pusher token that
// breaks deadlocks, a priority token that breaks livelocks, and a
// counter-flushing controller that makes the whole construction
// self-stabilizing: from any corrupted state — arbitrary process memory,
// up to CMAX garbage messages per channel — the system converges to exactly
// (ℓ, 1, 1) tokens and then satisfies safety, fairness and (k,ℓ)-liveness.
//
// Two execution substrates are provided:
//
//   - System — a deterministic simulated network with an adversarial
//     scheduler; runs are reproducible from a seed, and monitors report
//     convergence, waiting time and safety. This is what the experiments
//     and benchmarks use.
//   - Live — a goroutine-per-process runtime over buffered Go channels with
//     wire-encoded frames and a wall-clock root timeout.
//
// Quickstart:
//
//	tr := kofl.Star(8)
//	sys, _ := kofl.New(tr, kofl.Options{K: 2, L: 3})
//	sys.Request(3, 2)          // process 3 asks for 2 units
//	sys.Run(100_000)           // let the adversary schedule
//	m := sys.Metrics()         // grants, waiting time, resets, census
package kofl

import (
	"kofl/internal/adversary"
	"kofl/internal/campaign"
	"kofl/internal/core"
	"kofl/internal/sim"
	"kofl/internal/tree"
)

// Tree is an oriented rooted tree; process 0 is the root, a non-root
// process's channel 0 leads to its parent.
type Tree = tree.Tree

// NewTree builds a tree from a parent array (parents[0] must be
// tree.NoParent, i.e. -1).
func NewTree(parents []int) (*Tree, error) { return tree.New(parents) }

// Chain returns a path of n processes rooted at one end.
func Chain(n int) *Tree { return tree.Chain(n) }

// Star returns a root with n-1 leaf children.
func Star(n int) *Tree { return tree.Star(n) }

// Balanced returns a balanced tree of the given arity and depth.
func Balanced(arity, depth int) *Tree { return tree.Balanced(arity, depth) }

// Caterpillar returns a spine of `spine` processes with `legs` leaves each.
func Caterpillar(spine, legs int) *Tree { return tree.Caterpillar(spine, legs) }

// PaperTree returns the 8-process example tree of the paper's figures.
func PaperTree() *Tree { return tree.Paper() }

// Variant selects the protocol rung from the paper's incremental
// construction. The zero value is the full self-stabilizing protocol.
type Variant uint8

const (
	// FullProtocol is the complete self-stabilizing protocol (default).
	FullProtocol Variant = iota
	// NaiveVariant circulates resource tokens only (deadlocks; Figure 2).
	NaiveVariant
	// PusherVariant adds the pusher token (livelocks; Figure 3).
	PusherVariant
	// NonStabilizingVariant adds the priority token but no controller:
	// correct while fault-free, not self-stabilizing.
	NonStabilizingVariant
)

func (v Variant) features() core.Features {
	switch v {
	case NaiveVariant:
		return core.Naive()
	case PusherVariant:
		return core.PusherOnly()
	case NonStabilizingVariant:
		return core.NonStabilizing()
	default:
		return core.Full()
	}
}

// String names the variant.
func (v Variant) String() string {
	switch v {
	case NaiveVariant:
		return "naive"
	case PusherVariant:
		return "pusher"
	case NonStabilizingVariant:
		return "non-stabilizing"
	default:
		return "full"
	}
}

// Errata selects paper-literal pseudocode behaviors; see DESIGN.md §4.
type Errata = core.Errata

// State is a process's application-interface state.
type State = core.State

// The three interface states of the paper.
const (
	Out = core.Out
	Req = core.Req
	In  = core.In
)

// Census is a snapshot of the global token population.
type Census = sim.Census

// Scheduler is the simulation's asynchrony adversary; see the sim package's
// RandomScheduler, RoundRobinScheduler, ScriptScheduler and
// AntiTargetScheduler.
type Scheduler = sim.Scheduler

// Options configures a System or a Live network.
type Options struct {
	// K is the per-request cap, L the number of resource units (1 ≤ K ≤ L).
	K, L int
	// CMAX bounds initial garbage per channel (default 4); it sizes the
	// counter-flushing domain.
	CMAX int
	// Seed drives the simulation's randomness (System only).
	Seed int64
	// Variant selects the protocol rung (default: full protocol).
	Variant Variant
	// Errata switches to paper-literal pseudocode (default: corrected).
	Errata Errata
	// TimeoutTicks overrides the root's retransmission timeout in scheduler
	// steps (System only; 0 = topology-derived default).
	TimeoutTicks int64
	// Scheduler overrides the asynchrony adversary (System only;
	// nil = seeded uniform random).
	Scheduler Scheduler
}

func (o Options) config(t *Tree) core.Config {
	cmax := o.CMAX
	if cmax == 0 {
		cmax = 4
	}
	return core.Config{
		K: o.K, L: o.L, N: t.N(), CMAX: cmax,
		Features: o.Variant.features(),
		Errata:   o.Errata,
	}
}

// WaitingBound returns Theorem 2's worst-case waiting time ℓ(2n-3)² for a
// stabilized system of n processes and ℓ units.
func WaitingBound(n, l int) int64 {
	d := int64(2*n - 3)
	return int64(l) * d * d
}

// CampaignSpec declares a parallel sweep: a grid of topologies, (k,ℓ)
// pairs, CMAX values, variants, timeouts and fault schedules, each cell run
// over a seed range. See the campaign package for the field reference and
// internal/campaign/README.md for the spec format.
type CampaignSpec = campaign.Spec

// CampaignTopology names one tree constructor of a campaign grid.
type CampaignTopology = campaign.TopologySpec

// CampaignKL is one explicit (k, ℓ) pair of a campaign grid.
type CampaignKL = campaign.KL

// CampaignSeeds is the per-cell seed range of a campaign.
type CampaignSeeds = campaign.SeedRange

// CampaignWorkload configures the request generator of every campaign run.
type CampaignWorkload = campaign.WorkloadSpec

// CampaignFaults configures fault injection (arbitrary starts, storm
// periods) for a campaign.
type CampaignFaults = campaign.FaultSpec

// CampaignScenario is one column of a campaign's adversary-scenario axis:
// a built-in scenario by name, or an inline AdversaryScript.
type CampaignScenario = campaign.ScenarioSpec

// AdversaryScript is a declarative fault scenario: phases × targets ×
// fault kinds × budgets, compiled to a deterministic per-step fault
// schedule (see internal/adversary).
type AdversaryScript = adversary.Script

// ParseAdversaryScript decodes and validates a JSON scenario script
// (unknown fields and foreign schema versions rejected).
func ParseAdversaryScript(b []byte) (*AdversaryScript, error) { return adversary.Parse(b) }

// CampaignReport is the order-independent aggregate a campaign produces.
type CampaignReport = campaign.Report

// CampaignOptions tunes the engine (worker count, progress callback,
// per-slot hooks, trace capture directory).
type CampaignOptions = campaign.Options

// CampaignPlan is the serializable execution plan of a campaign — the
// enumeration of every (cell, seed) slot, partitionable into deterministic
// shards for cross-machine execution.
type CampaignPlan = campaign.Plan

// CampaignPartial is the byte-stable result of executing one shard of a
// campaign plan.
type CampaignPartial = campaign.Partial

// CampaignEscalated is a campaign outcome with adaptive seed escalation:
// the base report plus one report per escalation round.
type CampaignEscalated = campaign.Escalated

// ParseCampaignSpec decodes a JSON campaign spec (unknown fields rejected).
func ParseCampaignSpec(b []byte) (CampaignSpec, error) { return campaign.ParseSpec(b) }

// PlanCampaign expands spec into its base execution plan (the pipeline's
// first stage). The plan round-trips through JSON (Plan.JSON /
// campaign.ParsePlan), which is the unit of cross-machine distribution.
func PlanCampaign(spec CampaignSpec) (*CampaignPlan, error) { return campaign.NewPlan(spec) }

// ExecuteCampaignShard runs shard i of m of a campaign plan across workers
// goroutines and returns its byte-stable partial report.
func ExecuteCampaignShard(plan *CampaignPlan, i, m, workers int) (*CampaignPartial, error) {
	return campaign.ExecuteShard(plan, i, m, campaign.Options{Workers: workers})
}

// MergeCampaign validates that the partials exactly cover the plan and
// reassembles them into the Report an unsharded run produces, byte for
// byte.
func MergeCampaign(plan *CampaignPlan, partials []*CampaignPartial) (*CampaignReport, error) {
	return campaign.Merge(plan, partials)
}

// RunCampaign expands spec into grid cells and runs every (cell, seed) pair
// as an independent System across workers goroutines (workers ≤ 0 = one per
// logical CPU). The aggregate Report — and its JSON/CSV renderings — is
// byte-identical for every worker count AND every sharding of the same
// plan: results land in slots addressed by (cell, seed) and are merged in
// plan order. Escalation rounds are not run (see RunEscalatedCampaign).
func RunCampaign(spec CampaignSpec, workers int) (*CampaignReport, error) {
	return campaign.Run(spec, campaign.Options{Workers: workers})
}

// RunEscalatedCampaign runs the full adaptive pipeline: the base grid, then
// up to spec.Escalation.Rounds re-planned sweeps of the cells whose
// convergence statistics stayed noisy, each with an escalated seed count.
// The result is reproducible run-to-run for a fixed spec.
func RunEscalatedCampaign(spec CampaignSpec, workers int) (*CampaignEscalated, error) {
	return campaign.RunEscalated(spec, campaign.Options{Workers: workers})
}
