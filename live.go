package kofl

import (
	"time"

	"kofl/internal/runtime"
)

// Live is a goroutine-per-process protocol instance over buffered Go
// channels: real concurrency, wire-encoded frames, wall-clock root timeout.
// See runtime.Net for the full method set (Start, Stop, Request, Release,
// OnEnter, Grants, InjectGarbage, InjectNoise).
type Live = runtime.Net

// LiveOptions configures a Live network.
type LiveOptions struct {
	Options
	// Timeout is the root's wall-clock retransmission timeout
	// (default 25ms).
	Timeout time.Duration
	// LinkBuffer is the per-link frame buffer (default 256).
	LinkBuffer int
}

// NewLive builds a live network over t. Call Start to launch it; the system
// bootstraps its tokens through the root timeout. Only the full
// (self-stabilizing) variant is supported live — the other rungs exist for
// the simulator's ablations.
func NewLive(t *Tree, opts LiveOptions) (*Live, error) {
	return runtime.New(t, opts.Options.config(t), runtime.Options{
		Timeout:    opts.Timeout,
		LinkBuffer: opts.LinkBuffer,
	})
}
