package kofl_test

import (
	"testing"

	"kofl"
)

func TestNewFromGraphComposition(t *testing.T) {
	g := kofl.GridGraph(3, 3)
	comp, err := kofl.NewFromGraph(g, kofl.Options{K: 2, L: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if comp.SpanningTree.N() != 9 {
		t.Fatalf("tree size %d", comp.SpanningTree.N())
	}
	if comp.TreeRounds <= 0 {
		t.Errorf("TreeRounds = %d, want > 0 (layer starts corrupted)", comp.TreeRounds)
	}
	// BFS optimality: corner-rooted 3x3 grid has height 4.
	if comp.SpanningTree.Height() != 4 {
		t.Errorf("tree height %d, want BFS optimum 4", comp.SpanningTree.Height())
	}
	// The exclusion layer works on top.
	for p := 0; p < 9; p++ {
		comp.Saturate(p, 1+p%2, 2, 4, 0)
	}
	comp.Run(300_000)
	m := comp.Metrics()
	if !m.Converged {
		t.Fatal("exclusion layer did not converge on the extracted tree")
	}
	for p, gr := range m.Grants {
		if gr == 0 {
			t.Errorf("process %d starved on the composed system", p)
		}
	}
}

func TestNewFromGraphPropagatesErrors(t *testing.T) {
	g := kofl.RingGraph(6)
	if _, err := kofl.NewFromGraph(g, kofl.Options{K: 0, L: 0}); err == nil {
		t.Error("invalid exclusion options accepted")
	}
}

func TestGraphConstructors(t *testing.T) {
	if g := kofl.RingGraph(5); g.N() != 5 || g.Edges() != 5 {
		t.Error("RingGraph")
	}
	if g := kofl.CompleteGraph(4); g.Edges() != 6 {
		t.Error("CompleteGraph")
	}
	if _, err := kofl.NewGraph(3, [][2]int{{0, 1}, {1, 2}}); err != nil {
		t.Errorf("NewGraph: %v", err)
	}
	if _, err := kofl.NewGraph(3, [][2]int{{0, 1}}); err == nil {
		t.Error("disconnected graph accepted")
	}
}
