package kofl_test

import (
	"fmt"
	"time"

	"kofl"
)

// ExampleServe leases resource units over TCP: a lease server multiplexes
// external clients onto a live protocol tree, and every grant is bounded by
// the protocol's invariants (at most k units per lease, at most ℓ out at
// once, system-wide).
func ExampleServe() {
	srv, err := kofl.Serve(kofl.Star(4), kofl.ServeOptions{K: 2, L: 3})
	if err != nil {
		fmt.Println("serve:", err)
		return
	}
	defer srv.Close()

	c, err := kofl.DialLease(srv.Addr())
	if err != nil {
		fmt.Println("dial:", err)
		return
	}
	defer c.Close()

	lease, err := c.Acquire(2, 10*time.Second)
	if err != nil {
		fmt.Println("acquire:", err)
		return
	}
	fmt.Println("granted units:", lease.Units)
	fmt.Println("held:", srv.UnitsHeld())
	if err := c.Release(lease.ID); err != nil {
		fmt.Println("release:", err)
	}
	// Output:
	// granted units: 2
	// held: 2
}
