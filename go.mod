module kofl

go 1.24
