// Live: the protocol under real concurrency.
//
// One goroutine per process, one buffered Go channel per directed tree edge,
// frames wire-encoded, and the root's retransmission timeout on the wall
// clock. Before start, every link is polluted with garbage frames — the
// protocol bootstraps anyway, and concurrent clients on every process lease
// and return units through the blocking-style API.
//
// Run: go run ./examples/live
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"kofl"
)

func main() {
	tr := kofl.Balanced(2, 3) // 15 processes
	net, err := kofl.NewLive(tr, kofl.LiveOptions{
		Options: kofl.Options{K: 2, L: 4, CMAX: 5},
		Timeout: 10 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Pollute the links, then start: self-stabilization on a live substrate.
	net.InjectGarbage(1)
	net.InjectNoise(2, 40)

	granted := make([]chan struct{}, tr.N())
	for p := 0; p < tr.N(); p++ {
		granted[p] = make(chan struct{}, 8)
		p := p
		net.OnEnter(p, func(int) { granted[p] <- struct{}{} })
	}
	net.Start(context.Background())
	defer net.Stop()

	const rounds = 5
	var wg sync.WaitGroup
	start := time.Now()
	for p := 1; p < tr.N(); p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				need := 1 + (p+r)%2
				if err := net.Request(p, need); err != nil {
					log.Printf("process %d: %v", p, err)
					return
				}
				<-granted[p] // blocks until the protocol grants the units
				time.Sleep(time.Millisecond)
				net.Release(p)
			}
		}(p)
	}
	wg.Wait()

	fmt.Printf("%d processes × %d rounds served in %v\n", tr.N()-1, rounds, time.Since(start).Round(time.Millisecond))
	fmt.Printf("grants: %d, frames delivered: %d, garbage frames rejected by the wire layer: %d\n",
		net.Grants(), net.FramesDelivered(), net.FramesRejected())
}
