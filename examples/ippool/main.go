// IP address pool: ℓ-exclusion as the k=1 special case.
//
// A DHCP-like service owns a pool of ℓ=4 addresses shared by the processes
// of a chain network (think daisy-chained switches). Each client leases one
// address at a time (k=1), holds it for a while and returns it. The paper's
// protocol degenerates to self-stabilizing ℓ-exclusion: up to 4 concurrent
// leases, every client is served infinitely often, and even after a burst of
// memory/channel corruption the pool size recovers to exactly 4 — no leaked
// and no conjured addresses.
//
// Run: go run ./examples/ippool
package main

import (
	"fmt"
	"log"

	"kofl"
)

func main() {
	const pool = 4
	tr := kofl.Chain(10)
	sys, err := kofl.New(tr, kofl.Options{K: 1, L: pool, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	for p := 0; p < tr.N(); p++ {
		sys.Saturate(p, 1, 25, 15, 0)
	}

	sys.Run(200_000)
	m := sys.Metrics()
	fmt.Printf("phase 1: %d leases granted, census %v\n", m.TotalGrants, m.Census)

	// A transient fault storm: arbitrary process states and channel garbage
	// (lost and duplicated leases included).
	sys.InjectArbitraryFaults(99)
	fmt.Printf("fault injected: census now %v\n", sys.Census())

	sys.Run(300_000)
	m = sys.Metrics()
	fmt.Printf("phase 2: recovered census %v\n", m.Census)
	fmt.Printf("pool intact: %d addresses in circulation (want %d)\n",
		m.Census.Res(), pool)
	fmt.Printf("total leases: %d; controller resets used for repair: %d\n",
		m.TotalGrants, m.Resets)
}
