// Quickstart: build a tree, request resource units, watch grants.
//
// Eight processes share ℓ=3 units of a resource; any process may ask for up
// to k=2 at a time. The protocol self-bootstraps (the controller creates the
// tokens), process 3 asks for 2 units and process 5 for 1; both requests are
// granted concurrently because 2+1 ≤ ℓ.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"kofl"
)

func main() {
	tr := kofl.Star(8)
	sys, err := kofl.New(tr, kofl.Options{K: 2, L: 3, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	sys.OnEnter(3, func() {
		fmt.Printf("t=%-6d process 3 entered its critical section holding %d units\n",
			sys.Now(), sys.UnitsHeld(3))
	})
	sys.OnEnter(5, func() {
		fmt.Printf("t=%-6d process 5 entered its critical section holding %d units\n",
			sys.Now(), sys.UnitsHeld(5))
	})

	if err := sys.Request(3, 2); err != nil {
		log.Fatal(err)
	}
	if err := sys.Request(5, 1); err != nil {
		log.Fatal(err)
	}

	// Let the asynchronous adversary schedule until both are in.
	for i := 0; i < 100_000 && !(sys.InCS(3) && sys.InCS(5)); i++ {
		sys.Step()
	}
	fmt.Printf("t=%-6d both in simultaneously: %v (3 holds %d, 5 holds %d, ℓ=3)\n",
		sys.Now(), sys.InCS(3) && sys.InCS(5), sys.UnitsHeld(3), sys.UnitsHeld(5))

	sys.Release(3)
	sys.Release(5)
	sys.Run(1_000)

	m := sys.Metrics()
	fmt.Printf("\nconverged at step %d; census: %v\n", m.ConvergedAt, m.Census)
	fmt.Printf("total grants: %d, controller circulations: %d, resets: %d\n",
		m.TotalGrants, m.Circulations, m.Resets)
}
