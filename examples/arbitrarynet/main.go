// Arbitrary rooted networks: the paper's §5 extension.
//
// The exclusion protocol needs an oriented tree, but real networks are
// meshes. Following the paper's composition argument, a self-stabilizing
// BFS spanning-tree layer first stabilizes over a random mesh (here: from a
// fully corrupted initial state), the oriented tree is extracted, and the
// k-out-of-ℓ exclusion protocol runs on top — where it again converges from
// any state, which is exactly why the layered composition is sound.
//
// Run: go run ./examples/arbitrarynet
package main

import (
	"fmt"
	"log"

	"kofl"
)

func main() {
	// A 4×5 grid mesh: 20 routers, 31 links — plenty of cycles.
	g := kofl.GridGraph(4, 5)
	fmt.Printf("network: %v (not a tree)\n", g)

	comp, err := kofl.NewFromGraph(g, kofl.Options{K: 2, L: 4, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spanning-tree layer stabilized in %d heartbeat rounds\n", comp.TreeRounds)
	fmt.Printf("extracted oriented tree: height %d, virtual ring %d positions\n\n",
		comp.SpanningTree.Height(), comp.SpanningTree.RingLen())

	for p := 0; p < g.N(); p++ {
		comp.Saturate(p, 1+p%2, 6, 10, 0)
	}
	comp.Run(400_000)

	m := comp.Metrics()
	fmt.Printf("exclusion layer converged at step %d; census %v\n", m.ConvergedAt, m.Census)
	fmt.Printf("grants: %d total, worst waiting %d (bound %d)\n",
		m.TotalGrants, m.MaxWaiting, m.WaitingBound)
	starved := 0
	for _, gr := range m.Grants {
		if gr == 0 {
			starved++
		}
	}
	fmt.Printf("starved processes: %d/20\n", starved)
}
