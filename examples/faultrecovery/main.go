// Fault recovery: watching self-stabilization do its job.
//
// The full protocol runs on the paper's 8-process tree. We repeatedly hit
// the system with a different class of transient fault — token loss, token
// duplication, full state corruption — and report how the controller
// detects the damage (census drift), repairs it (top-up or reset traversal),
// and how long convergence takes. Requests keep flowing throughout.
//
// Run: go run ./examples/faultrecovery
package main

import (
	"fmt"
	"log"

	"kofl"
)

func main() {
	tr := kofl.PaperTree()
	sys, err := kofl.New(tr, kofl.Options{K: 3, L: 5, CMAX: 6, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	for p := 0; p < tr.N(); p++ {
		sys.Saturate(p, 1+p%3, 5, 10, 0)
	}

	if !sys.RunUntilConverged(500_000) {
		log.Fatal("bootstrap never converged")
	}
	at, _ := sys.Converged()
	fmt.Printf("bootstrap: converged at step %d — census %v\n\n", at, sys.Census())

	phase := func(name string, inject func()) {
		before := sys.Metrics()
		inject()
		fmt.Printf("%-18s census after fault: %v\n", name+":", sys.Census())
		sys.Run(sys.Sim().TimeoutTicks()*4 + 50_000)
		after := sys.Metrics()
		fmt.Printf("%-18s repaired census:    %v (resets used: %d, grants kept flowing: +%d)\n\n",
			"", after.Census, after.Resets-before.Resets, after.TotalGrants-before.TotalGrants)
	}

	phase("drop 2 tokens", func() {
		n := sys.DropResourceTokens(21, 2)
		fmt.Printf("                   dropped %d resource tokens in flight\n", n)
	})
	phase("duplicate 3", func() {
		n := sys.DuplicateResourceTokens(22, 3)
		fmt.Printf("                   duplicated %d resource tokens in flight\n", n)
	})
	phase("full corruption", func() {
		sys.InjectArbitraryFaults(23)
	})

	m := sys.Metrics()
	if m.Census.Res() == 5 && m.Census.FreePush == 1 && m.Census.Prio() == 1 {
		fmt.Println("final state legitimate: exactly ℓ=5 resource tokens, 1 pusher, 1 priority token")
	} else {
		fmt.Printf("final state NOT legitimate yet: %v\n", m.Census)
	}
}
