// Bandwidth allocation: the paper's motivating heterogeneous workload.
//
// A media distribution tree shares ℓ=8 bandwidth units. Leaf stations run
// mixed traffic: audio streams cost 1 unit, video streams cost 3 (k=3).
// k-out-of-ℓ exclusion lets several small flows and a couple of large ones
// hold units simultaneously while guaranteeing that no unit is double-booked
// and every request is eventually served — even the expensive video requests
// that a naive allocator would starve under constant audio churn.
//
// Run: go run ./examples/bandwidth
package main

import (
	"fmt"
	"log"

	"kofl"
)

const (
	audioUnits = 1
	videoUnits = 3
)

func main() {
	// A two-level distribution tree: root, 3 relays, 3 stations per relay.
	tr := kofl.Balanced(3, 2)
	sys, err := kofl.New(tr, kofl.Options{K: videoUnits, L: 8, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Relays (1..3) don't request. Stations (4..12) alternate: two audio
	// stations for every video station. Audio holds briefly and churns;
	// video holds longer.
	video := map[int]bool{}
	for p := 4; p < tr.N(); p++ {
		if p%3 == 0 {
			video[p] = true
			sys.Saturate(p, videoUnits, 40, 30, 0)
		} else {
			sys.Saturate(p, audioUnits, 10, 5, 0)
		}
	}

	sys.Run(500_000)
	m := sys.Metrics()

	fmt.Println("station  traffic  grants  (ℓ=8, audio=1 unit, video=3 units)")
	var audioG, videoG int64
	for p := 4; p < tr.N(); p++ {
		kind := "audio"
		if video[p] {
			kind = "video"
			videoG += m.Grants[p]
		} else {
			audioG += m.Grants[p]
		}
		fmt.Printf("  %2d     %-6s  %6d\n", p, kind, m.Grants[p])
	}
	fmt.Printf("\naudio grants: %d, video grants: %d — no starvation of the 3-unit flows\n",
		audioG, videoG)
	fmt.Printf("worst waiting time: %d CS entries (Theorem 2 bound: %d)\n",
		m.MaxWaiting, m.WaitingBound)
	fmt.Printf("safety violations after convergence: %d\n", m.SafetyViolationsAfterConvergence)
}
